#!/usr/bin/env sh
# scripts/bench.sh — regenerate BENCH_PR6.json, the performance record for
# the resilient-gateway PR: fleet simulation throughput with the gateway
# off (the PR5 baseline) vs on, the per-request gateway admission cost
# (which must stay at 0 allocs/op), per-request routing-decision costs for
# every policy, and the dispatch-path microbenchmarks carried forward.
#
# Runs the dispatch-path microbenchmarks (alloc mask generation, hsa
# steady-state dispatch bare and with telemetry attached, gpu launch
# cycle, server serving loop, telemetry counter/gauge/histogram writes),
# the cluster fleet benchmarks (full 3x2-GPU fleet runs and router pick
# costs; benchstat-compatible output in /tmp/krisp_bench_dispatch.txt and
# /tmp/krisp_bench_cluster.txt), and times the table4/fig15 grids, then
# writes the numbers to BENCH_PR5.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s per benchmark)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
benchtxt=/tmp/krisp_bench_dispatch.txt
clustertxt=/tmp/krisp_bench_cluster.txt
gatewaytxt=/tmp/krisp_bench_gateway.txt
out=BENCH_PR6.json

echo "== dispatch-path microbenchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/alloc ./internal/hsa ./internal/gpu ./internal/server ./internal/telemetry | tee "$benchtxt"

echo "== cluster fleet benchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/cluster | tee "$clustertxt"

echo "== gateway benchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/cluster/gateway | tee "$gatewaytxt"

gateway_field() { # $1 = benchmark name (after Benchmark), $2 = unit column
    awk -v name="Benchmark$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$gatewaytxt"
}

admission_allocs=$(gateway_field GatewayAdmission allocs/op)
if [ "$admission_allocs" != "0" ]; then
    echo "FAIL: gateway admission allocates ($admission_allocs allocs/op, want 0)" >&2
    exit 1
fi

cluster_field() { # $1 = benchmark name (after Benchmark), $2 = unit column
    awk -v name="Benchmark$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$clustertxt"
}

# Pull "name ns/op allocs/op" pairs out of the benchmark output.
bench_field() { # $1 = benchmark name, $2 = column header suffix (ns/op | allocs/op)
    awk -v name="Benchmark$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$benchtxt"
}

go build -o /tmp/krisp-bench-measure ./cmd/krisp-bench

grid_ms() { # $1 = experiment id, $2 = parallel workers
    s=$(date +%s%N)
    /tmp/krisp-bench-measure -exp "$1" -quick -parallel "$2" > /dev/null
    t=$(date +%s%N)
    echo $(( (t - s) / 1000000 ))
}

echo "== table4 -quick grid, serial =="
serial_ms=$(grid_ms table4 1)
echo "${serial_ms} ms"
workers=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)
# Exercise the fan-out path even on small hosts.
[ "$workers" -lt 4 ] && workers=4
echo "== table4 -quick grid, parallel ($workers workers) =="
par_ms=$(grid_ms table4 "$workers")
echo "${par_ms} ms"
echo "== fig15 -quick grid, parallel ($workers workers) =="
fig15_ms=$(grid_ms fig15 "$workers")
echo "${fig15_ms} ms"

# PR 3-era baselines (this branch's parent, same benchmarks, see
# BENCH_PR3.json and DESIGN.md §8). Kept as constants so the JSON shows
# the trajectory without needing a checkout of the old tree. The contract
# this PR adds: hsa.DispatchWithTelemetry must stay at 0 allocs/op with
# live counters, gauges, and histograms attached.
pr3_dispatch_ns=418.5; pr3_dispatch_allocs=0
pr3_launch_ns=541.8;   pr3_launch_allocs=0
pr3_serve_ns=987935;   pr3_serve_allocs=3832
pr3_table4_serial_ms=1648

cat > "$out" <<EOF
{
  "pr": 6,
  "title": "Resilient multi-tenant gateway: hedging, retry budgets, circuit breakers, and fleet-scale chaos",
  "host_note": "measured on a shared container; treat numbers as indicative. The gateway contract: with every mechanism disabled it is byte-identical to gateway-off, and admission stays 0 allocs/op with rate limiting, classes, and deadline checks active.",
  "gateway": {
    "unit": {"time": "ns/op", "allocs": "allocs/op", "throughput": "routed requests per wall-second"},
    "FleetThroughputGatewayOff": {"time": $(cluster_field FleetThroughputSerial ns/op),  "throughput": $(cluster_field FleetThroughputSerial requests/s)},
    "FleetThroughputGatewayOn":  {"time": $(cluster_field FleetThroughputGateway ns/op), "throughput": $(cluster_field FleetThroughputGateway requests/s)},
    "gateway.Admission": {"time": $(gateway_field GatewayAdmission ns/op), "allocs": $admission_allocs}
  },
  "fleet": {
    "unit": {"time": "ns/op (one 300ms virtual fleet run)", "throughput": "routed requests per wall-second"},
    "FleetThroughputSerial":   {"time": $(cluster_field FleetThroughputSerial ns/op),   "throughput": $(cluster_field FleetThroughputSerial requests/s)},
    "FleetThroughputParallel": {"time": $(cluster_field FleetThroughputParallel ns/op), "throughput": $(cluster_field FleetThroughputParallel requests/s)},
    "routing_decision_ns": {
      "round-robin":       $(cluster_field 'FleetRoutingDecision/round-robin' ns/op),
      "least-outstanding": $(cluster_field 'FleetRoutingDecision/least-outstanding' ns/op),
      "p2c":               $(cluster_field 'FleetRoutingDecision/p2c' ns/op),
      "slo-aware":         $(cluster_field 'FleetRoutingDecision/slo-aware' ns/op)
    }
  },
  "microbenchmarks": {
    "unit": {"time": "ns/op", "allocs": "allocs/op"},
    "pr3": {
      "hsa.Dispatch":              {"time": $pr3_dispatch_ns, "allocs": $pr3_dispatch_allocs},
      "gpu.LaunchCompleteCycle":   {"time": $pr3_launch_ns,   "allocs": $pr3_launch_allocs},
      "server.ServeOneBatchKRISP": {"time": $pr3_serve_ns,    "allocs": $pr3_serve_allocs}
    },
    "now": {
      "alloc.GenerateMask":          {"time": $(bench_field GenerateMask ns/op),          "allocs": $(bench_field GenerateMask allocs/op)},
      "alloc.MaskCacheIdleHit":      {"time": $(bench_field MaskCacheIdleHit ns/op),      "allocs": $(bench_field MaskCacheIdleHit allocs/op)},
      "alloc.MaskCacheBusyHit":      {"time": $(bench_field MaskCacheBusyHit ns/op),      "allocs": $(bench_field MaskCacheBusyHit allocs/op)},
      "hsa.Dispatch":                {"time": $(bench_field Dispatch ns/op),              "allocs": $(bench_field Dispatch allocs/op)},
      "hsa.DispatchWithTelemetry":   {"time": $(bench_field DispatchWithTelemetry ns/op), "allocs": $(bench_field DispatchWithTelemetry allocs/op)},
      "hsa.DispatchPassthrough":     {"time": $(bench_field DispatchPassthrough ns/op),   "allocs": $(bench_field DispatchPassthrough allocs/op)},
      "gpu.LaunchCompleteCycle":     {"time": $(bench_field LaunchCompleteCycle ns/op),   "allocs": $(bench_field LaunchCompleteCycle allocs/op)},
      "server.ServeOneBatchKRISP":   {"time": $(bench_field ServeOneBatchKRISP ns/op),    "allocs": $(bench_field ServeOneBatchKRISP allocs/op)},
      "telemetry.CounterInc":        {"time": $(bench_field CounterInc ns/op),            "allocs": $(bench_field CounterInc allocs/op)},
      "telemetry.GaugeSet":          {"time": $(bench_field GaugeSet ns/op),              "allocs": $(bench_field GaugeSet allocs/op)},
      "telemetry.HistogramObserve":  {"time": $(bench_field HistogramObserve ns/op),      "allocs": $(bench_field HistogramObserve allocs/op)}
    }
  },
  "grid": {
    "experiment": "table4 -quick",
    "pr3_serial_ms": $pr3_table4_serial_ms,
    "serial_ms": $serial_ms,
    "parallel_ms": $par_ms,
    "parallel_workers": $workers,
    "fig15_parallel_ms": $fig15_ms
  }
}
EOF

echo "wrote $out"
cat "$out"
