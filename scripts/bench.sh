#!/usr/bin/env sh
# scripts/bench.sh — regenerate BENCH_PR2.json, the performance record for
# the allocation-lean engine + parallel harness PR.
#
# Runs the internal/sim microbenchmarks (benchstat-compatible output is
# left in /tmp/krisp_bench_sim.txt) and times the table4 grid experiment
# serially and with a parallel fan-out, then writes the numbers to
# BENCH_PR2.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s per benchmark)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
simtxt=/tmp/krisp_bench_sim.txt
out=BENCH_PR2.json

echo "== internal/sim microbenchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" ./internal/sim | tee "$simtxt"

# Pull "name ns/op allocs/op" triples out of the benchmark output.
bench_field() { # $1 = benchmark name, $2 = column header suffix (ns/op | allocs/op)
    awk -v name="Benchmark$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$simtxt"
}

go build -o /tmp/krisp-bench-measure ./cmd/krisp-bench

grid_ms() { # $1 = parallel workers
    s=$(date +%s%N)
    /tmp/krisp-bench-measure -exp table4 -quick -parallel "$1" > /dev/null
    t=$(date +%s%N)
    echo $(( (t - s) / 1000000 ))
}

echo "== table4 -quick grid, serial =="
serial_ms=$(grid_ms 1)
echo "${serial_ms} ms"
workers=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)
# Exercise the fan-out path even on small hosts.
[ "$workers" -lt 4 ] && workers=4
echo "== table4 -quick grid, parallel ($workers workers) =="
par_ms=$(grid_ms "$workers")
echo "${par_ms} ms"

# Seed-era baselines, measured on the pre-PR engine with these same
# benchmarks (see DESIGN.md §7). Kept as constants so the JSON shows the
# trajectory without needing a checkout of the old engine.
seed_atrun_ns=258.6;  seed_atrun_allocs=1
seed_cancel_ns=68.65; seed_cancel_allocs=1
seed_churn_ns=261.3;  seed_churn_allocs=1
seed_grid_ms=5200

cat > "$out" <<EOF
{
  "pr": 2,
  "title": "Parallel experiment harness + allocation-lean DES hot path",
  "host_note": "measured on a single-core container (GOMAXPROCS=1): the parallel harness cannot beat serial wall-clock here; the grid speedup comes from the allocation-lean engine and gpu mask/device hot paths. On multi-core hosts -parallel N adds on top.",
  "microbenchmarks": {
    "unit": {"time": "ns/op", "allocs": "allocs/op"},
    "seed": {
      "AtRun":            {"time": $seed_atrun_ns,  "allocs": $seed_atrun_allocs},
      "CancelReschedule": {"time": $seed_cancel_ns, "allocs": $seed_cancel_allocs},
      "Churn":            {"time": $seed_churn_ns,  "allocs": $seed_churn_allocs}
    },
    "now": {
      "AtRun":            {"time": $(bench_field AtRun ns/op),            "allocs": $(bench_field AtRun allocs/op)},
      "CancelReschedule": {"time": $(bench_field CancelReschedule ns/op), "allocs": $(bench_field CancelReschedule allocs/op)},
      "Churn":            {"time": $(bench_field Churn ns/op),            "allocs": $(bench_field Churn allocs/op)}
    }
  },
  "grid": {
    "experiment": "table4 -quick",
    "seed_serial_ms": $seed_grid_ms,
    "serial_ms": $serial_ms,
    "parallel_ms": $par_ms,
    "parallel_workers": $workers
  }
}
EOF

echo "wrote $out"
cat "$out"
