#!/usr/bin/env sh
# scripts/bench.sh — regenerate BENCH_PR10.json, the performance record for
# the LLM serving PR: the continuous-batching token loop, per-phase
# right-sizing, and the disaggregated LLM fleet (shared vs per-phase),
# plus everything carried forward — the fleet-scaling sweep (4/16/64 nodes
# under serial lockstep, parallel lockstep, conservative lookahead, and
# the event-horizon default), the journey-sampling overhead sweep, the
# tracked 3-node fleet throughput benchmarks, and the dispatch-path
# microbenchmarks. Hard guards: gateway admission at 0 allocs/op, every
# routing-decision policy at 0, routing with journeys off at 0, the LLM
# continuous-batching token loop at 0, server.ServeOneBatchKRISP at or
# under 20 allocs/op, and — the PR10 acceptance gate — the LLM-off
# 16-node event-horizon fleet throughput must stay within noise of the
# PR9 baseline (the LLM hooks must cost nothing when no LLM workload is
# configured); any regression fails the script.
#
# The scaling sweep runs -count times and keeps the best (minimum ns/op)
# of each benchmark — on a shared 1-CPU container, run-to-run noise is
# ±20-30% and the minimum is the closest observable to the noise-free
# time. Baseline constants below were measured the same way (best of 3 at
# -benchtime 20x) on this PR's parent commit with identical configs.
#
# Usage: scripts/bench.sh [benchtime] [scale_benchtime] [scale_count]
#        (defaults: 1s, 20x, 3)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
scale_benchtime="${2:-20x}"
scale_count="${3:-3}"
benchtxt=/tmp/krisp_bench_dispatch.txt
clustertxt=/tmp/krisp_bench_cluster.txt
gatewaytxt=/tmp/krisp_bench_gateway.txt
scaletxt=/tmp/krisp_bench_scaling.txt

out=BENCH_PR10.json

echo "== dispatch-path + LLM microbenchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/alloc ./internal/hsa ./internal/gpu ./internal/server ./internal/sched ./internal/sim ./internal/telemetry | tee "$benchtxt"

echo "== cluster fleet benchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench 'FleetThroughput|FleetRoutingDecision|RouteWithJourneys|LLMFleet' -benchmem \
    -benchtime "$benchtime" ./internal/cluster | tee "$clustertxt"

echo "== fleet scaling + journey overhead sweep (benchtime=$scale_benchtime, count=$scale_count, best-of) =="
go test -run '^$' -bench 'FleetScaling' -benchmem \
    -benchtime "$scale_benchtime" -count "$scale_count" \
    ./internal/cluster | tee "$scaletxt"

echo "== gateway benchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/cluster/gateway | tee "$gatewaytxt"

# Pull "name value unit" fields out of benchstat-style output.
field() { # $1 = file, $2 = benchmark name (after Benchmark), $3 = unit
    awk -v name="Benchmark$2" -v unit="$3" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$1"
}

# Best (minimum) value of a repeated benchmark for a unit where lower is
# better; best_max for requests/s where higher is better.
best_min() { # $1 = file, $2 = benchmark name, $3 = unit
    awk -v name="Benchmark$2" -v unit="$3" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit && (!seen || $i+0 < best)) { best = $i+0; seen = 1 }
        }
        END { if (seen) print best }
    ' "$1"
}
best_max() { # $1 = file, $2 = benchmark name, $3 = unit
    awk -v name="Benchmark$2" -v unit="$3" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit && (!seen || $i+0 > best)) { best = $i+0; seen = 1 }
        }
        END { if (seen) print best }
    ' "$1"
}

gateway_field() { field "$gatewaytxt" "$1" "$2"; }
cluster_field() { field "$clustertxt" "$1" "$2"; }
bench_field()   { field "$benchtxt"   "$1" "$2"; }

admission_allocs=$(gateway_field GatewayAdmission allocs/op)
if [ "$admission_allocs" != "0" ]; then
    echo "FAIL: gateway admission allocates ($admission_allocs allocs/op, want 0)" >&2
    exit 1
fi

serve_allocs=$(bench_field ServeOneBatchKRISP allocs/op)
if [ "$serve_allocs" -gt 20 ]; then
    echo "FAIL: server.ServeOneBatchKRISP allocates ($serve_allocs allocs/op, want <= 20)" >&2
    exit 1
fi

llm_batch_allocs=$(bench_field LLMContinuousBatch allocs/op)
if [ "$llm_batch_allocs" != "0" ]; then
    echo "FAIL: LLM continuous-batching token loop allocates ($llm_batch_allocs allocs/op, want 0)" >&2
    exit 1
fi

for pol in round-robin least-outstanding p2c slo-aware; do
    pol_allocs=$(cluster_field "FleetRoutingDecision/$pol" allocs/op)
    if [ "$pol_allocs" != "0" ]; then
        echo "FAIL: routing decision ($pol) allocates ($pol_allocs allocs/op, want 0)" >&2
        exit 1
    fi
done

journeys_off_allocs=$(cluster_field 'RouteWithJourneys/off' allocs/op)
if [ "$journeys_off_allocs" != "0" ]; then
    echo "FAIL: routing with journeys off allocates ($journeys_off_allocs allocs/op, want 0)" >&2
    exit 1
fi

# Pre-PR baselines carried forward, measured with this same methodology
# (best of 3 at -benchtime 20x) on the respective parent commits.
pr7_scaling_lockstep_ns_4=3915864
pr7_scaling_lockstep_ns_16=11999017
pr7_scaling_lockstep_ns_64=41429254
pr7_serve_ns=632312
pr7_serve_allocs=213
pr7_p2c_ns=251.7

# PR9 baselines (BENCH_PR9.json, same host/methodology): the 16-node
# event-horizon sweep this PR's LLM-off acceptance gate is judged
# against. The sweep workload configures no LLM workload, so it exercises
# exactly the path the gate protects: with LLM off the fleet must consume
# zero extra RNG draws, run byte-identical to PR9, and lose no
# throughput. The floor is 0.65x — run-to-run noise on this shared
# container is ±20-30%, so anything above it is "within noise" while a
# real regression (the LLM hooks leaking work onto the classic path)
# lands well below.
pr9_scaling_eh_ns_16=21194909
pr9_scaling_eh_rps_16=87238

llm_off_rps=$(best_max "$scaletxt" "FleetScaling/nodes=16/event-horizon" requests/s)
llm_off_ok=$(awk -v now="$llm_off_rps" -v base="$pr9_scaling_eh_rps_16" \
    'BEGIN { print (now >= 0.65 * base) ? "ok" : "fail" }')
if [ "$llm_off_ok" != "ok" ]; then
    echo "FAIL: LLM-off fleet throughput regressed ($llm_off_rps req/s vs PR9 baseline $pr9_scaling_eh_rps_16, want >= 0.65x)" >&2
    exit 1
fi

# ratio prints a/b to 4 decimals (overhead factors).
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.4f", a / b }'; }

scale_entry() { # $1 = nodes, $2 = mode
    printf '{"time": %s, "throughput": %s}' \
        "$(best_min "$scaletxt" "FleetScaling/nodes=$1/$2" ns/op)" \
        "$(best_max "$scaletxt" "FleetScaling/nodes=$1/$2" requests/s)"
}

speedup() { # $1 = baseline ns, $2 = nodes (event-horizon vs pr7 lockstep)
    now=$(best_min "$scaletxt" "FleetScaling/nodes=$2/event-horizon" ns/op)
    awk -v b="$1" -v n="$now" 'BEGIN { printf "%.2f", b / n }'
}

journey_off_ns=$(best_min "$scaletxt" "FleetScalingJourneys/off" ns/op)
journey_1pct_ns=$(best_min "$scaletxt" "FleetScalingJourneys/1pct" ns/op)
journey_all_ns=$(best_min "$scaletxt" "FleetScalingJourneys/all" ns/op)
journey_off_rps=$(best_max "$scaletxt" "FleetScalingJourneys/off" requests/s)
journey_1pct_rps=$(best_max "$scaletxt" "FleetScalingJourneys/1pct" requests/s)
journey_all_rps=$(best_max "$scaletxt" "FleetScalingJourneys/all" requests/s)

cat > "$out" <<EOF
{
  "pr": 10,
  "title": "LLM autoregressive serving: prefill/decode phases, KV-cache accounting, continuous batching, per-phase right-sizing",
  "host_note": "measured on a shared 1-CPU container (nproc=1), run-to-run noise +/-20-30%, hence best-of-N minima. This PR adds the internal/llm model family, the continuous-batching token loop in internal/server, KV-cache admission/preemption on the device ledger, per-phase (prefill vs decode) kernel-wise right-sizing in internal/sched, and disaggregated prefill->decode routing with KV handoffs in internal/cluster. The llm section measures the new paths: the token loop must run allocation-free at steady state, right-sizing is one cached planner query per phase pair, and the fleet rows are a 2x2-GPU disaggregated fleet at shared vs per-phase partition sizes (wall-side rates; the capacity payoff — per-phase packs several decode replicas per GPU where the shared size cannot place the decode tier — is pinned by TestLLMPerPhaseBeatsShared). The llm_off_gate row is the acceptance gate: with no LLM workload configured the fleet consumes zero extra RNG draws and must hold PR9 throughput. Carried-forward sections (scaling, journeys, fleet, guards, microbenchmarks) keep their PR9 shapes and baselines.",
  "llm": {
    "unit": {"time": "ns/op", "allocs": "allocs/op"},
    "server.LLMContinuousBatch": {"time": $(bench_field LLMContinuousBatch ns/op), "allocs": $llm_batch_allocs, "note": "one 1ms token-loop slice on an 8-seq continuous batch, steady state"},
    "sched.LLMRightSizing": {"time": $(bench_field LLMRightSizing ns/op), "allocs": $(bench_field LLMRightSizing allocs/op), "note": "uncached per-phase sizing query (fresh planner per iteration)"},
    "fleet": {
      "unit": {"time": "ns/op (one 300ms virtual fleet run)", "tokens": "generated tokens per wall-second", "throughput": "routed sequences per wall-second"},
      "workload": "llm-small, 2 nodes x 2 GPUs, 2000 seq/s, prompt 128, output 64, disaggregated prefill/decode tiers, seed 42",
      "shared":    {"time": $(cluster_field 'LLMFleet/shared' ns/op), "tokens": $(cluster_field 'LLMFleet/shared' tokens/s), "throughput": $(cluster_field 'LLMFleet/shared' requests/s)},
      "per-phase": {"time": $(cluster_field 'LLMFleet/per-phase' ns/op), "tokens": $(cluster_field 'LLMFleet/per-phase' tokens/s), "throughput": $(cluster_field 'LLMFleet/per-phase' requests/s)}
    },
    "llm_off_gate": {
      "throughput": $llm_off_rps,
      "pr9_baseline": $pr9_scaling_eh_rps_16,
      "ratio": $(ratio "$llm_off_rps" "$pr9_scaling_eh_rps_16"),
      "floor": 0.65
    }
  },
  "journeys": {
    "unit": {"time": "ns/op (one 300ms virtual 16-node fleet run, best of $scale_count)", "throughput": "routed requests per wall-second (best of $scale_count)"},
    "workload": "squeezenet batch 8, constant 400 req/s per node, 16 nodes x 2 GPUs, event-horizon scheduler, seed 7",
    "off":  {"time": $journey_off_ns,  "throughput": $journey_off_rps},
    "1pct": {"time": $journey_1pct_ns, "throughput": $journey_1pct_rps, "overhead_time": $(ratio "$journey_1pct_ns" "$journey_off_ns")},
    "all":  {"time": $journey_all_ns,  "throughput": $journey_all_rps, "overhead_time": $(ratio "$journey_all_ns" "$journey_off_ns")}
  },
  "scaling": {
    "unit": {"time": "ns/op (one 300ms virtual fleet run, best of $scale_count)", "throughput": "routed requests per wall-second (best of $scale_count)"},
    "workload": "squeezenet batch 8, constant 400 req/s per node, 2 GPUs per node, seed 7",
    "nodes=4": {
      "serial":        $(scale_entry 4 serial),
      "lockstep":      $(scale_entry 4 lockstep),
      "lookahead":     $(scale_entry 4 lookahead),
      "event-horizon": $(scale_entry 4 event-horizon)
    },
    "nodes=16": {
      "serial":        $(scale_entry 16 serial),
      "lockstep":      $(scale_entry 16 lockstep),
      "lookahead":     $(scale_entry 16 lookahead),
      "event-horizon": $(scale_entry 16 event-horizon)
    },
    "nodes=64": {
      "serial":        $(scale_entry 64 serial),
      "lockstep":      $(scale_entry 64 lockstep),
      "lookahead":     $(scale_entry 64 lookahead),
      "event-horizon": $(scale_entry 64 event-horizon)
    },
    "pr9_event_horizon_16": {"time": $pr9_scaling_eh_ns_16, "throughput": $pr9_scaling_eh_rps_16},
    "pr7_lockstep_baseline": {
      "nodes=4":  {"time": $pr7_scaling_lockstep_ns_4},
      "nodes=16": {"time": $pr7_scaling_lockstep_ns_16},
      "nodes=64": {"time": $pr7_scaling_lockstep_ns_64}
    },
    "speedup_vs_pr7_lockstep": {
      "nodes=4":  $(speedup $pr7_scaling_lockstep_ns_4 4),
      "nodes=16": $(speedup $pr7_scaling_lockstep_ns_16 16),
      "nodes=64": $(speedup $pr7_scaling_lockstep_ns_64 64)
    }
  },
  "fleet": {
    "unit": {"time": "ns/op (one 300ms virtual fleet run)", "throughput": "routed requests per wall-second"},
    "FleetThroughputSerial":   {"time": $(cluster_field FleetThroughputSerial ns/op),   "throughput": $(cluster_field FleetThroughputSerial requests/s)},
    "FleetThroughputLockstep": {"time": $(cluster_field FleetThroughputLockstep ns/op), "throughput": $(cluster_field FleetThroughputLockstep requests/s)},
    "FleetThroughputParallel": {"time": $(cluster_field FleetThroughputParallel ns/op), "throughput": $(cluster_field FleetThroughputParallel requests/s)},
    "FleetThroughputGateway":  {"time": $(cluster_field FleetThroughputGateway ns/op),  "throughput": $(cluster_field FleetThroughputGateway requests/s)},
    "routing_decision_ns": {
      "pr7_p2c": $pr7_p2c_ns,
      "round-robin":       $(cluster_field 'FleetRoutingDecision/round-robin' ns/op),
      "least-outstanding": $(cluster_field 'FleetRoutingDecision/least-outstanding' ns/op),
      "p2c":               $(cluster_field 'FleetRoutingDecision/p2c' ns/op),
      "slo-aware":         $(cluster_field 'FleetRoutingDecision/slo-aware' ns/op)
    }
  },
  "guards": {
    "gateway.Admission": {"time": $(gateway_field GatewayAdmission ns/op), "allocs": $admission_allocs, "limit": 0},
    "cluster.RoutingDecision": {"allocs": 0, "limit": 0},
    "cluster.RouteWithJourneysOff": {"allocs": $journeys_off_allocs, "limit": 0},
    "server.LLMContinuousBatch": {"allocs": $llm_batch_allocs, "limit": 0},
    "server.ServeOneBatchKRISP": {"time": $(bench_field ServeOneBatchKRISP ns/op), "allocs": $serve_allocs, "limit": 20, "pr7": {"time": $pr7_serve_ns, "allocs": $pr7_serve_allocs}},
    "cluster.LLMOffThroughput": {"throughput": $llm_off_rps, "pr9_baseline": $pr9_scaling_eh_rps_16, "floor": 0.65}
  },
  "microbenchmarks": {
    "unit": {"time": "ns/op", "allocs": "allocs/op"},
    "alloc.GenerateMask":          {"time": $(bench_field GenerateMask ns/op),          "allocs": $(bench_field GenerateMask allocs/op)},
    "alloc.MaskCacheIdleHit":      {"time": $(bench_field MaskCacheIdleHit ns/op),      "allocs": $(bench_field MaskCacheIdleHit allocs/op)},
    "hsa.Dispatch":                {"time": $(bench_field Dispatch ns/op),              "allocs": $(bench_field Dispatch allocs/op)},
    "hsa.DispatchWithTelemetry":   {"time": $(bench_field DispatchWithTelemetry ns/op), "allocs": $(bench_field DispatchWithTelemetry allocs/op)},
    "gpu.LaunchCompleteCycle":     {"time": $(bench_field LaunchCompleteCycle ns/op),   "allocs": $(bench_field LaunchCompleteCycle allocs/op)},
    "sim.HorizonProbe":            {"time": $(bench_field HorizonProbe ns/op),          "allocs": $(bench_field HorizonProbe allocs/op)},
    "server.ServeOneBatchKRISP":   {"time": $(bench_field ServeOneBatchKRISP ns/op),    "allocs": $serve_allocs}
  }
}
EOF

echo "wrote $out"
cat "$out"
