#!/usr/bin/env sh
# scripts/bench.sh — regenerate BENCH_PR3.json, the performance record for
# the zero-allocation kernel dispatch fast path PR.
#
# Runs the dispatch-path microbenchmarks (alloc mask generation, hsa
# steady-state dispatch, gpu launch cycle, server serving loop;
# benchstat-compatible output is left in /tmp/krisp_bench_dispatch.txt)
# and times the table4 grid experiment serially and with a parallel
# fan-out plus the fig15 mixed-model grid, then writes the numbers to
# BENCH_PR3.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s per benchmark)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
benchtxt=/tmp/krisp_bench_dispatch.txt
out=BENCH_PR3.json

echo "== dispatch-path microbenchmarks (benchtime=$benchtime) =="
go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" \
    ./internal/alloc ./internal/hsa ./internal/gpu ./internal/server | tee "$benchtxt"

# Pull "name ns/op allocs/op" pairs out of the benchmark output.
bench_field() { # $1 = benchmark name, $2 = column header suffix (ns/op | allocs/op)
    awk -v name="Benchmark$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }
    ' "$benchtxt"
}

go build -o /tmp/krisp-bench-measure ./cmd/krisp-bench

grid_ms() { # $1 = experiment id, $2 = parallel workers
    s=$(date +%s%N)
    /tmp/krisp-bench-measure -exp "$1" -quick -parallel "$2" > /dev/null
    t=$(date +%s%N)
    echo $(( (t - s) / 1000000 ))
}

echo "== table4 -quick grid, serial =="
serial_ms=$(grid_ms table4 1)
echo "${serial_ms} ms"
workers=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)
# Exercise the fan-out path even on small hosts.
[ "$workers" -lt 4 ] && workers=4
echo "== table4 -quick grid, parallel ($workers workers) =="
par_ms=$(grid_ms table4 "$workers")
echo "${par_ms} ms"
echo "== fig15 -quick grid, parallel ($workers workers) =="
fig15_ms=$(grid_ms fig15 "$workers")
echo "${fig15_ms} ms"

# PR 2-era baselines, measured on this branch's parent with the same
# benchmarks and host (see DESIGN.md §8). Kept as constants so the JSON
# shows the trajectory without needing a checkout of the old tree.
pr2_genmask_ns=1743;   pr2_genmask_allocs=18
pr2_launch_ns=718.1;   pr2_launch_allocs=2
pr2_serve_ns=1970000;  pr2_serve_allocs=21065
pr2_table4_serial_ms=2823

cat > "$out" <<EOF
{
  "pr": 3,
  "title": "Zero-allocation kernel dispatch fast path",
  "host_note": "measured on a single-core container (GOMAXPROCS=1): grid speedups come from the dispatch fast path itself (allocator scratch reuse, mask cache, signal/exec pooling, shared profile DB), not parallelism. On multi-core hosts -parallel N adds on top.",
  "microbenchmarks": {
    "unit": {"time": "ns/op", "allocs": "allocs/op"},
    "pr2": {
      "alloc.GenerateMask":        {"time": $pr2_genmask_ns, "allocs": $pr2_genmask_allocs},
      "gpu.LaunchCompleteCycle":   {"time": $pr2_launch_ns,  "allocs": $pr2_launch_allocs},
      "server.ServeOneBatchKRISP": {"time": $pr2_serve_ns,   "allocs": $pr2_serve_allocs}
    },
    "now": {
      "alloc.GenerateMask":        {"time": $(bench_field GenerateMask ns/op),        "allocs": $(bench_field GenerateMask allocs/op)},
      "alloc.MaskCacheIdleHit":    {"time": $(bench_field MaskCacheIdleHit ns/op),    "allocs": $(bench_field MaskCacheIdleHit allocs/op)},
      "alloc.MaskCacheBusyHit":    {"time": $(bench_field MaskCacheBusyHit ns/op),    "allocs": $(bench_field MaskCacheBusyHit allocs/op)},
      "hsa.Dispatch":              {"time": $(bench_field Dispatch ns/op),            "allocs": $(bench_field Dispatch allocs/op)},
      "hsa.DispatchPassthrough":   {"time": $(bench_field DispatchPassthrough ns/op), "allocs": $(bench_field DispatchPassthrough allocs/op)},
      "gpu.LaunchCompleteCycle":   {"time": $(bench_field LaunchCompleteCycle ns/op), "allocs": $(bench_field LaunchCompleteCycle allocs/op)},
      "server.ServeOneBatchKRISP": {"time": $(bench_field ServeOneBatchKRISP ns/op),  "allocs": $(bench_field ServeOneBatchKRISP allocs/op)}
    }
  },
  "grid": {
    "experiment": "table4 -quick",
    "pr2_serial_ms": $pr2_table4_serial_ms,
    "serial_ms": $serial_ms,
    "parallel_ms": $par_ms,
    "parallel_workers": $workers,
    "fig15_parallel_ms": $fig15_ms
  }
}
EOF

echo "wrote $out"
cat "$out"
