// Colocation: mix two different inference models on one GPU — the paper's
// Fig. 15 scenario — and compare how each partitioning policy shares the
// device between a latency-light transformer (albert) and a CU-hungry
// CNN (resnext101).
//
// Run with:
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/server"
)

func main() {
	albert, ok := models.ByName("albert")
	if !ok {
		log.Fatal("albert not found")
	}
	resnext, ok := models.ByName("resnext101")
	if !ok {
		log.Fatal("resnext101 not found")
	}
	const batch = 32

	// Isolated baselines for normalization.
	isoA := server.Run(server.Config{
		Policy:  policies.MPSDefault,
		Workers: []server.WorkerSpec{{Model: albert, Batch: batch}},
		Seed:    1,
	})
	isoR := server.Run(server.Config{
		Policy:  policies.MPSDefault,
		Workers: []server.WorkerSpec{{Model: resnext, Batch: batch}},
		Seed:    1,
	})
	fmt.Printf("isolated: albert %.0f req/s (p95 %.0fms), resnext101 %.0f req/s (p95 %.0fms)\n\n",
		isoA.RPS, isoA.MaxP95()/1000, isoR.RPS, isoR.MaxP95()/1000)

	fmt.Printf("%-18s %14s %14s %12s %14s\n",
		"policy", "albert rel.", "resnext rel.", "sum", "worst p95 ms")
	for _, policy := range policies.All() {
		res := server.Run(server.Config{
			Policy: policy,
			Workers: []server.WorkerSpec{
				{Model: albert, Batch: batch},
				{Model: resnext, Batch: batch},
			},
			Seed: 1,
		})
		relA := rps(res, 0) / isoA.RPS
		relR := rps(res, 1) / isoR.RPS
		fmt.Printf("%-18s %14.2f %14.2f %12.2f %14.0f\n",
			policy.Label(), relA, relR, relA+relR, res.MaxP95()/1000)
	}
	fmt.Println("\nrel. = worker throughput relative to its model running alone; sum 2.0 = no interference")
}

func rps(res server.Result, worker int) float64 {
	return float64(res.Workers[worker].Requests) / float64(res.WindowUs) * 1e6
}
