// Cluster: plan a multi-model serving fleet the way prior works'
// schedulers do (Gpulet-style sizing + packing), watch the plan chase a
// diurnal load trace, and compare the reconfiguration bill between
// process-scoped shadow reloads and KRISP's kernel-scoped instances.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"krisp/internal/models"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
	"krisp/internal/sched"
)

func main() {
	planner := sched.NewPlanner(profile.DefaultConfig())

	pick := func(name string) models.Model {
		m, ok := models.ByName(name)
		if !ok {
			log.Fatalf("model %s not found", name)
		}
		return m
	}
	demands := []sched.Demand{
		{Model: pick("albert"), Batch: 32},
		{Model: pick("squeezenet"), Batch: 32},
		{Model: pick("resnext101"), Batch: 32},
	}

	// One plan at a fixed operating point.
	for i, rate := range []float64{900, 5000, 300} {
		demands[i].RatePerSec = rate
	}
	plan := planner.Plan(demands, 4)
	fmt.Printf("operating point (900/5000/300 rps) -> %d gpulets on %d GPU(s), feasible=%v\n",
		len(plan.Gpulets), plan.GPUs, plan.Feasible)
	for _, g := range plan.Gpulets {
		fmt.Printf("  %v\n", g)
	}

	// A day compressed into six epochs.
	trace := [][]float64{
		{300, 1500, 100},
		{900, 5000, 300},
		{1500, 9000, 500},
		{2000, 12000, 700},
		{1200, 7000, 400},
		{300, 1500, 100},
	}
	plans, report := planner.ReplanTrace(demands, trace, 4, reconfig.DefaultCosts())
	fmt.Printf("\ndiurnal trace, %d epochs:\n", len(plans))
	for e, p := range plans {
		cus := 0
		for g := 0; g < p.GPUs; g++ {
			cus += p.TotalCUs(g)
		}
		fmt.Printf("  epoch %d: rates %v -> %d gpulets, %d GPUs, %d CUs\n",
			e, trace[e], len(p.Gpulets), p.GPUs, cus)
	}
	fmt.Printf("\n%d instance resizes across the day\n", report.Resizes)
	fmt.Printf("process-scoped (shadow) reload bill: %.1f s\n", float64(report.ProcessScopedReload)/1e6)
	fmt.Printf("kernel-scoped (KRISP) reload bill:   %.0f s — resizes land at the next kernel\n",
		float64(report.KernelScopedReload)/1e6)
}
