// Cluster: run a simulated serving fleet end to end — three multi-GPU
// nodes behind an SLO-aware router, gpulet placement from the Gpulet-style
// planner, and an epoch autoscaler chasing a diurnal trace — then stress
// it: a thermally-throttled GPU that SLO-aware routing must steer around,
// and a node crash whose replicas the next epoch re-places on the
// survivors. Along the way, compare the reconfiguration bill between
// process-scoped shadow reloads and KRISP's kernel-scoped instances.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"krisp/internal/cluster"
	"krisp/internal/cluster/workload"
	"krisp/internal/faults"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
)

func main() {
	pick := func(name string) models.Model {
		m, ok := models.ByName(name)
		if !ok {
			log.Fatalf("model %s not found", name)
		}
		return m
	}

	// A compressed day: 300 virtual ms, replanned every 50ms. Reconfig
	// costs are scaled to the same compression (a 10ms model load here
	// stands in for the ~8s of wall time a real load takes).
	base := cluster.Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []cluster.Workload{
			{
				Model: pick("squeezenet"),
				Batch: 8,
				Gen: workload.Diurnal{
					Trough: 800, Peak: 5000, Period: 300 * sim.Millisecond,
				},
			},
			{
				Model: pick("mobilenet"),
				Batch: 8,
				Gen:   workload.Constant{RatePerSec: 1200},
			},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 300 * sim.Millisecond,
		Seed:     42,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
	}

	// Act 1 — a healthy fleet on a diurnal day.
	fmt.Println("== healthy fleet, diurnal trace ==")
	res := run(base, cluster.SLOAware, nil)
	report(res)
	fmt.Printf("reconfig bill: process-scoped %.0f ms vs kernel-scoped %.0f ms\n",
		float64(res.ProcessScopedReload)/1000, float64(res.KernelScopedReload)/1000)

	// Act 2 — one GPU on node 1 runs at quarter speed all day (thermal
	// throttle). Round-robin keeps feeding it; SLO-aware watches each
	// replica's observed P95 and steers around the slow one.
	fmt.Println("\n== degraded GPU (node 1, gpu 0, 4x slow): round-robin vs slo-aware ==")
	slow := []faults.NodeFault{{At: 0, Node: 1, Kind: faults.GPUDegrade, GPU: 0, Stretch: 3.0}}
	rr := run(base, cluster.RoundRobin, slow)
	slo := run(base, cluster.SLOAware, slow)
	fmt.Printf("round-robin: %4d bad requests (%d rejected, %d SLO violations), p95 %.1f ms\n",
		rr.BadRequests(), rr.Rejected, rr.SLOViolations, rr.Latency.P95()/1000)
	fmt.Printf("slo-aware:   %4d bad requests (%d rejected, %d SLO violations), p95 %.1f ms\n",
		slo.BadRequests(), slo.Rejected, slo.SLOViolations, slo.Latency.P95()/1000)

	// Act 3 — node 2 crashes mid-day and never comes back. Its replicas
	// die with their in-flight requests; the next epoch's replan re-places
	// them on the surviving nodes and serving continues.
	fmt.Println("\n== node 2 crashes at t=120ms ==")
	crash := []faults.NodeFault{{At: 120 * sim.Millisecond, Node: 2, Kind: faults.NodeDown}}
	cres := run(base, cluster.SLOAware, crash)
	report(cres)
	fmt.Printf("placement churn: %d migrations, %d drains — the crashed node's share re-placed within one epoch\n",
		cres.Migrations, cres.Drains)
}

func run(cfg cluster.Config, p cluster.Policy, nf []faults.NodeFault) *cluster.Result {
	cfg.Policy = p
	cfg.NodeFaults = nf
	return cluster.Run(cfg)
}

func report(r *cluster.Result) {
	fmt.Printf("%d arrivals -> %d routed, %d completed, %d rejected, %d failed, %d SLO violations\n",
		r.Arrivals, r.Routed, r.Completed, r.Rejected, r.Failed, r.SLOViolations)
	fmt.Printf("p95 latency %.1f ms, goodput %.0f rps, energy %.1f J\n",
		r.Latency.P95()/1000, r.GoodputRPS(), r.EnergyJ)
}
