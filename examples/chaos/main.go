// Chaos: inject hardware faults into a two-worker KRISP colocation and
// watch the hardened serving path absorb them. One CU dies mid-run, the
// CU-mask IOCTL becomes flaky, and a small fraction of kernels straggle or
// transiently fail; the run is compared against the identical fault-free
// experiment and the injector's counters are printed.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"krisp/internal/faults"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/server"
)

func main() {
	albert, ok := models.ByName("albert")
	if !ok {
		log.Fatal("albert not found")
	}
	squeezenet, ok := models.ByName("squeezenet")
	if !ok {
		log.Fatal("squeezenet not found")
	}

	base := server.Config{
		Policy: policies.KRISPI,
		Workers: []server.WorkerSpec{
			{Model: albert, Batch: 32},
			{Model: squeezenet, Batch: 32},
		},
		Seed:           1,
		ForceEmulation: true, // exercise the IOCTL-per-kernel path
	}

	clean := server.Run(base)

	chaotic := base
	chaotic.Faults = &faults.Plan{
		Seed: 7,
		// One CU of SE0 dies a third of the way into the run.
		CUKills: []faults.CUKill{{At: 500_000, GPU: 0, CU: 0}},
		// The reconfiguration IOCTL fails 20% of the time and takes an extra
		// 300us another 10% of the time.
		IOCTL: faults.IOCTLFaults{FailProb: 0.20, SlowProb: 0.10, SlowExtra: 300},
		// A sprinkle of stragglers and transient kernel failures.
		Kernels: faults.KernelFaults{
			StragglerProb:     0.002,
			StragglerStretch:  4,
			TransientFailProb: 0.002,
		},
	}
	res := server.Run(chaotic)

	fmt.Printf("%-22s %12s %12s\n", "", "fault-free", "chaos")
	fmt.Printf("%-22s %12.0f %12.0f\n", "aggregate req/s", clean.RPS, res.RPS)
	fmt.Printf("%-22s %12.1f %12.1f\n", "worst p95 (ms)", clean.MaxP95()/1000, res.MaxP95()/1000)
	fmt.Printf("%-22s %12.3f %12.3f\n", "J per inference", clean.EnergyPerInference, res.EnergyPerInference)

	s := res.Faults
	fmt.Println("\ninjected faults:")
	fmt.Printf("  CU kills            %6d\n", s.CUKills)
	fmt.Printf("  IOCTL failures      %6d\n", s.IOCTLFailures)
	fmt.Printf("  IOCTL delays        %6d\n", s.IOCTLDelays)
	fmt.Printf("  kernel stragglers   %6d\n", s.KernelStragglers)
	fmt.Printf("  transient failures  %6d\n", s.KernelTransientFailures)
	fmt.Println("hardened-path reactions:")
	fmt.Printf("  kernel retries      %6d\n", s.KernelRetries)
	fmt.Printf("  kernels abandoned   %6d\n", s.KernelsAbandoned)
	fmt.Printf("  health re-masks     %6d\n", s.HealthRemasks)
	fmt.Printf("  mask fallbacks      %6d\n", s.MaskFallbacks)
	fmt.Printf("  stream fallbacks    %6d\n", s.StreamFallbacks)
	fmt.Printf("  full-GPU fallbacks  %6d\n", s.FullGPUFallbacks)
	fmt.Printf("  ladder tightenings  %6d\n", s.LadderTightenings)
	fmt.Printf("  watchdog trips      %6d\n", s.WatchdogTrips)
	fmt.Printf("  SLO widenings       %6d\n", s.SLOWidenings)
	fmt.Printf("  degraded time (ms)  %6.0f\n", s.DegradedTime/1000)
}
