// Gateway: put the resilience layer in front of the fleet and make it
// earn its keep. Act 1 replays the gray-node chaos scenario — two of
// three nodes stay "up" but run slow, the failure mode health checks
// miss — first against the bare router, then with the gateway's circuit
// breakers, deadline admission, and hedging engaged, and compares
// goodput. Act 2 runs the overload-burst scenario with two tenants: a
// premium tenant at class 0 and a bursting best-effort tenant at class 1
// sharing a finite admission rate, showing weighted fairness and
// priority shedding.
//
// Run with:
//
//	go run ./examples/gateway
package main

import (
	"fmt"
	"log"

	"krisp/internal/cluster"
	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
)

func main() {
	m, ok := models.ByName("squeezenet")
	if !ok {
		log.Fatal("squeezenet not in the model zoo")
	}

	// The same compressed fleet the chaos acceptance tests run: offered
	// load sized so that once most of the fleet goes gray, the one healthy
	// node is the scarce resource — resilience policy, not spare hardware,
	// decides what gets served.
	base := cluster.Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []cluster.Workload{
			{Model: m, Batch: 8, Gen: workload.Constant{RatePerSec: 2600}},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 400 * sim.Millisecond,
		Seed:     7,
		Policy:   cluster.SLOAware,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
	}

	// Act 1 — gray-failing nodes: bare router vs gateway.
	fmt.Println("== gray-node chaos: two of three nodes slow-but-alive ==")
	scenario, err := cluster.ChaosByName("gray-node")
	if err != nil {
		log.Fatal(err)
	}

	bare := base
	scenario.Apply(&bare)
	bres := cluster.Run(bare)

	guarded := base
	scenario.Apply(&guarded)
	guarded.Gateway = &gateway.Config{}
	gres := cluster.Run(guarded)

	goodput := func(r *cluster.Result) int { return r.Completed - r.SLOViolations }
	fmt.Printf("bare router: %d completed, %d SLO violations -> goodput %d\n",
		bres.Completed, bres.SLOViolations, goodput(bres))
	fmt.Printf("gateway:     %d completed, %d SLO violations -> goodput %d (%.1fx)\n",
		gres.Completed, gres.SLOViolations, goodput(gres),
		float64(goodput(gres))/float64(goodput(bres)))
	fmt.Printf("gateway actions: %s\n", gres.Gateway)
	fmt.Println("the bare router keeps serving queue-aged requests that can no longer" +
		"\nmeet their SLO; the gateway sheds them at admission, trips breakers on" +
		"\nthe gray replicas, and hedges stragglers onto the healthy node.")

	// Act 2 — overload burst with two tenants and priority classes.
	fmt.Println("\n== overload-burst chaos: premium vs bursting best-effort tenant ==")
	burst := base
	burst.Gateway = &gateway.Config{}
	ob, err := cluster.ChaosByName("overload-burst")
	if err != nil {
		log.Fatal(err)
	}
	ob.Apply(&burst) // wires tenants, classes, and the global admission rate
	obres := cluster.Run(burst)

	gs := obres.Gateway
	fmt.Printf("admitted %d, shed %d (overload %d, deadline %d)\n",
		gs.Admitted, gs.Shed(), gs.ShedOverload, gs.ShedDeadline)
	for _, ts := range gs.Tenants {
		total := ts.Admitted + ts.Shed
		fmt.Printf("tenant %d: admitted %4d, shed %4d (%.0f%% of its offered load)\n",
			ts.ID, ts.Admitted, ts.Shed, 100*float64(ts.Shed)/float64(total))
	}
	fmt.Println("the hot tenant's bursts drain its own bucket and the unreserved part" +
		"\nof the global bucket; the premium class keeps its admission headroom.")
}
