// LLM serving: the kernel-wise right-sizing argument applied to
// autoregressive inference. Prefill (prompt processing) is compute-bound
// GEMMs that want most of the GPU; decode (token generation) is a batched
// GEMV plus KV scan that is bandwidth-bound and tolerates tiny partitions.
// This walkthrough profiles the two phases, shows the per-phase
// right-sizes, runs one replica's continuous-batching token loop, and
// finishes with the fleet-scale payoff: a disaggregated fleet where
// per-phase partition sizes fit the same demand a shared size cannot.
//
// Run with:
//
//	go run ./examples/llm
package main

import (
	"fmt"

	"krisp/internal/cluster"
	"krisp/internal/cluster/workload"
	"krisp/internal/llm"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
	"krisp/internal/sched"
	"krisp/internal/server"
	"krisp/internal/sim"
)

func main() {
	model := llm.Small()

	// 1. The two phases want very different partitions.
	planner := sched.NewPlanner(profile.DefaultConfig())
	sz := planner.LLMSizing(model, 128, 32, 8)
	fmt.Printf("%s phase right-sizes (prompt 128, output 32, batch 8):\n", model.Name)
	fmt.Printf("  prefill: %2d CUs  (%6.0f us per prompt pass, %5.0f prompts/s per instance)\n",
		sz.PrefillCUs, float64(sz.PrefillLatency), sz.PrefillRPS)
	fmt.Printf("  decode:  %2d CUs  (%6.0f us per token step,  %5.0f tokens/s  per instance)\n",
		sz.DecodeCUs, float64(sz.DecodeStepLatency), sz.DecodeTokPS)
	fmt.Printf("  shared:  %2d CUs  (a phase-blind deployment pays the prefill knee everywhere)\n\n",
		sz.SharedCUs)

	// 2. One replica's continuous batch: sequences join and leave at token
	// boundaries, and the KV budget forces preemption under pressure.
	node := server.NewNode(server.NodeConfig{GPUs: 1, Seed: 1})
	rep := node.AddReplica(server.ReplicaSpec{
		GPU: 0, CUs: 60,
		LLM: &server.LLMSpec{
			Model: model, MaxSeqs: 4,
			KVBudget: 48 * model.KVBytesPerToken(),
		},
	})
	for id := uint64(1); id <= 6; id++ {
		rep.SubmitSeq(0, id, 16, 16, false)
	}
	node.RunUntil(sim.Second)
	st := rep.Stats()
	fmt.Printf("continuous batching on one replica (6 seqs, 48-token KV budget):\n")
	fmt.Printf("  %d completed in %d token steps, %d preemptions (evicted seqs resume, oldest first)\n",
		st.CompletedRequests, st.CompletedBatches, st.Preempted)
	for _, c := range rep.TakeCompletions(nil) {
		fmt.Printf("  seq %d: %2d tokens, first token at %5.0f us, done at %6.0f us\n",
			c.ID, c.Tokens, float64(c.FirstToken), float64(c.End))
	}

	// 3. Fleet scale: the same decode-heavy demand on a fixed 4-GPU fleet,
	// disaggregated into prefill and decode tiers, with one shared size
	// versus per-phase right-sizing.
	run := func(perPhase bool) *cluster.Result {
		cfg := cluster.Config{
			Nodes:       2,
			GPUsPerNode: 2,
			Workloads: []cluster.Workload{{
				Gen: workload.Constant{RatePerSec: 2000},
				LLM: &cluster.LLMWorkload{
					Model: model,
					Lengths: workload.LengthDist{
						PromptMin: 128, PromptMax: 128,
						OutputMin: 64, OutputMax: 64,
					},
					Disaggregate: true,
					PerPhase:     perPhase,
				},
			}},
			Tick:     2 * sim.Millisecond,
			Epoch:    50 * sim.Millisecond,
			Duration: 300 * sim.Millisecond,
			Seed:     42,
			Costs: reconfig.Costs{
				PartitionSetup: 2 * sim.Millisecond,
				ProcessStart:   3 * sim.Millisecond,
				ModelLoad:      10 * sim.Millisecond,
				SwapDowntime:   55 * sim.Microsecond,
			},
		}
		return cluster.Run(cfg)
	}
	shared := run(false)
	perPhase := run(true)
	fmt.Printf("\ndisaggregated fleet, 2 nodes x 2 GPUs, 2000 seq/s, output 64:\n")
	fmt.Printf("  %-10s %9s %9s %9s %10s %9s\n", "sizing", "completed", "tokens", "handoffs", "goodput", "unplaced")
	fmt.Printf("  %-10s %9d %9d %9d %10.0f %9d\n",
		"shared", shared.Completed, shared.TokensOut, shared.KVHandoffs, shared.GoodputRPS(), shared.Unplaced)
	fmt.Printf("  %-10s %9d %9d %9d %10.0f %9d\n",
		"per-phase", perPhase.Completed, perPhase.TokensOut, perPhase.KVHandoffs, perPhase.GoodputRPS(), perPhase.Unplaced)
	fmt.Printf("\nat the shared size every replica costs %d CUs, so the decode tier cannot\n", sz.SharedCUs)
	fmt.Printf("be placed (%d gpulets unplaced); per-phase decode replicas cost %d CUs and\n", shared.Unplaced, sz.DecodeCUs)
	fmt.Println("pack several per GPU — same fleet, same demand, strictly more goodput.")
}
