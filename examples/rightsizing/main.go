// Rightsizing: look inside one inference pass — the paper's Fig. 4 / 7 / 8
// story. Profiles albert's kernels, prints the phase structure of minimum
// required CUs, shows how the three distribution policies place a 19-CU
// partition, and sweeps a vector-multiply kernel across CU counts to
// expose the Packed spikes and Distributed dips.
//
// Run with:
//
//	go run ./examples/rightsizing
package main

import (
	"fmt"
	"log"
	"strings"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/models"
	"krisp/internal/profile"
	"krisp/internal/sim"
)

func main() {
	model, ok := models.ByName("albert")
	if !ok {
		log.Fatal("albert not found")
	}
	prof := profile.New(profile.DefaultConfig())

	// 1. Kernel-wise minimum required CUs across one inference pass: an
	// ASCII sparkline of the Fig. 4 trace.
	ks := model.Kernels(models.CalibrationBatch)
	fmt.Printf("albert: %d kernel calls per inference pass\n", len(ks))
	fmt.Println("per-kernel minimum required CUs (one char per kernel, . <=6, - <=15, = <=30, # >30):")
	var line strings.Builder
	for i, k := range ks {
		switch mc := prof.KernelMinCU(k.Work); {
		case mc <= 6:
			line.WriteByte('.')
		case mc <= 15:
			line.WriteByte('-')
		case mc <= 30:
			line.WriteByte('=')
		default:
			line.WriteByte('#')
		}
		if (i+1)%76 == 0 {
			line.WriteByte('\n')
		}
	}
	fmt.Println(line.String())
	fmt.Printf("\nmodel-wise right-size: %d CUs — but most kernels need far fewer,\n", prof.ModelRightSize(ks))
	fmt.Println("which is the fine-grain under-utilization KRISP harvests.")

	// 2. Where a 19-CU partition lands under each distribution policy.
	fmt.Println("\nplacing a 19-CU partition (Fig. 7):")
	for _, p := range []alloc.Policy{alloc.Distributed, alloc.Packed, alloc.Conserved} {
		mask := alloc.GenerateMask(gpu.MI50, nil, alloc.Request{
			NumCUs: 19, OverlapLimit: alloc.NoOverlapLimit, Policy: p,
		})
		fmt.Printf("  %-12s %s\n", p, mask.Format(gpu.MI50))
	}

	// 3. Why placement matters (Fig. 8): the same kernel, the same CU
	// count, very different latency depending on the distribution policy.
	dev := gpu.NewDevice(sim.New(), gpu.MI50Spec(), nil)
	work := kernels.VecMult(360).Work
	fmt.Println("\nvec_mult latency (us) vs active CUs (Fig. 8):")
	fmt.Printf("  %4s %12s %12s %12s\n", "CUs", "distributed", "packed", "conserved")
	for _, n := range []int{7, 11, 15, 16, 20, 31, 40, 46, 60} {
		fmt.Printf("  %4d", n)
		for _, p := range []alloc.Policy{alloc.Distributed, alloc.Packed, alloc.Conserved} {
			mask := alloc.GenerateMask(gpu.MI50, nil, alloc.Request{
				NumCUs: n, OverlapLimit: alloc.NoOverlapLimit, Policy: p,
			})
			fmt.Printf(" %12.1f", float64(dev.IsolatedDuration(work, mask)))
		}
		fmt.Println()
	}
	fmt.Println("\nnote the Packed spikes at 16/31/46 CUs and Distributed dips at 15/11/7 —")
	fmt.Println("the SE-boundary effects that led KRISP to adopt the Conserved policy.")
}
