// Quickstart: profile a model, serve it under KRISP, and print the
// headline numbers.
//
// This walks the full KRISP pipeline in ~30 lines of API:
//
//  1. install-time profiling builds the Required CUs table;
//  2. an inference server co-locates four workers of the model;
//  3. KRISP-I right-sizes every kernel launch to its profiled minimum,
//     isolating concurrent kernels on disjoint CUs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"krisp/internal/gpu"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/server"
)

func main() {
	model, ok := models.ByName("squeezenet")
	if !ok {
		log.Fatal("model not found")
	}
	const batch = 32

	// 1. Install-time profiling: the minimum required CUs of every kernel
	// variant, stored in the performance database the runtime consults.
	prof := profile.New(profile.DefaultConfig())
	db := profile.NewDB()
	db.Profile(prof, model.Kernels(batch))
	fmt.Printf("profiled %d kernel variants of %s\n", db.Len(), model.Name)
	fmt.Printf("model-wise right-size (prior works' metric): %d of %d CUs\n\n",
		prof.ModelRightSize(model.Kernels(batch)), gpu.MI50.TotalCUs())

	// 2+3. Serve four concurrent workers, first the way an unpartitioned
	// GPU would (MPS Default), then with KRISP-I kernel-scoped isolation.
	for _, policy := range []policies.Kind{policies.MPSDefault, policies.KRISPI} {
		workers := make([]server.WorkerSpec, 4)
		for i := range workers {
			workers[i] = server.WorkerSpec{Model: model, Batch: batch}
		}
		res := server.Run(server.Config{
			Policy:  policy,
			Workers: workers,
			DB:      db,
			Seed:    1,
		})
		fmt.Printf("%-16s  %8.1f req/s   p95 %6.1f ms   %.4f J/inference   %4.1f busy CUs\n",
			policy.Label(), res.RPS, res.MaxP95()/1000, res.EnergyPerInference, res.AvgBusyCUs)
	}
}
