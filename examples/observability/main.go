// Observability: run the gray-node chaos scenario with full request-journey
// sampling, per-stage latency attribution, and SLO burn-rate monitoring,
// then dump the flight recorder — the bounded ring of anomalous journeys —
// as JSON and as a Chrome trace you can load in Perfetto.
//
// The run demonstrates the whole observability stack: journeys are sampled
// on the routing hot path (counter-based, so the simulation stays
// byte-identical to an unobserved run), each completed journey telescopes
// into admit / transit / node-queue / batch-form / kernels / post stages,
// and the per-model burn-rate monitors page deterministically as the gray
// node poisons the fleet.
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"

	"krisp/internal/cluster"
	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

func main() {
	scenario, err := cluster.ChaosByName("gray-node")
	if err != nil {
		log.Fatal(err)
	}
	squeezenet, ok := models.ByName("squeezenet")
	if !ok {
		log.Fatal("squeezenet not found")
	}

	// A three-node fleet held slightly above the capacity that survives the
	// scenario, fronted by the resilience gateway — the same shape the chaos
	// acceptance tests use.
	cfg := cluster.Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []cluster.Workload{
			{Model: squeezenet, Batch: 8, Gen: workload.Constant{RatePerSec: 2600}},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 400 * sim.Millisecond,
		Seed:     7,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
		Policy:  cluster.SLOAware,
		Gateway: &gateway.Config{},
	}
	scenario.Apply(&cfg)
	fmt.Printf("scenario: %s — %s\n\n", scenario.Name, scenario.Description)

	// Sample every journey, monitor every model's SLO, keep a generous ring.
	cfg.Obs = &cluster.Observability{
		SampleEvery: 1,
		Monitors:    true,
		FlightCap:   512,
	}

	f := cluster.New(cfg)
	res := f.Run()
	fmt.Printf("fleet: %d routed, %d completed, %d rejected, %d SLO violations\n\n",
		res.Routed, res.Completed, res.Rejected, res.SLOViolations)

	// Latency attribution: average stage breakdown over the anomalous
	// journeys the flight recorder retained.
	fl := f.FlightRecorder()
	journeys := fl.Journeys()
	var sums [telemetry.NumStages]int64
	var counts [telemetry.NumStages]int64
	completed := 0
	for i := range journeys {
		j := &journeys[i]
		if j.Outcome != telemetry.JourneyCompleted {
			continue
		}
		completed++
		for s := 0; s < telemetry.NumStages; s++ {
			if d := j.StageUs(s); d >= 0 {
				sums[s] += d
				counts[s]++
			}
		}
	}
	fmt.Printf("latency attribution over %d completed anomalous journeys:\n", completed)
	for s := 0; s < telemetry.NumStages; s++ {
		if counts[s] == 0 {
			continue
		}
		fmt.Printf("  %-12s %8.2f ms avg\n",
			telemetry.StageNames[s], float64(sums[s])/float64(counts[s])/1000)
	}

	// SLO burn-rate monitors: the gray node must page its models.
	fmt.Printf("\nslo burn-rate monitors:\n")
	for _, s := range f.SLOStatuses() {
		fmt.Printf("  %-12s %-8s burn fast=%.2f slow=%.2f bad=%d/%d\n",
			s.Name, s.State, s.BurnFast, s.BurnSlow, s.Bad, s.Total)
		for _, tr := range s.History {
			fmt.Printf("    %6.0fms  %s -> %s\n", float64(tr.AtUs)/1000, tr.From, tr.To)
		}
	}

	// Dump the flight recorder both ways.
	dump := func(path string, write func(*os.File) error) {
		w, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		if err := write(w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Printf("\nflight recorder: %d retained of %d anomalous journeys\n", fl.Len(), fl.Total())
	dump("flight.json", func(w *os.File) error { return fl.WriteJSON(w) })
	dump("flight-trace.json", func(w *os.File) error { return fl.WriteChromeTrace(w) })
	fmt.Println("load flight-trace.json at https://ui.perfetto.dev to see the journeys")
}
